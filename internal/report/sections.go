package report

import (
	"fmt"
	"io"

	"nestedecpt/internal/sim"
	"nestedecpt/internal/stats"
)

// Section94 prints the nested ECPT walk characterization of §9.4: the
// STC size sweep, the average parallel accesses per step, and the CWC
// hit rates.
func (s *Suite) Section94(w io.Writer) error { return s.parallelized(w, s.section94) }

func (s *Suite) section94(w io.Writer) error {
	fmt.Fprintln(w, "Section 9.4: Characterizing nested ECPT walks (THP)")

	// STC size sweep over the configured applications.
	fmt.Fprintln(w, "STC hit rate vs size (paper: 10 -> 99%, 8 -> ~90%, 4 -> ~50%):")
	for _, entries := range []int{10, 8, 4} {
		var rates []float64
		for _, app := range s.Settings.apps() {
			r, err := s.run(runKey{design: sim.DesignNestedECPT, app: app, thp: true, tech: TechAdvanced, stc: entries})
			if err != nil {
				return err
			}
			if r.NestedECPT.STC.Total() > 0 {
				rates = append(rates, r.NestedECPT.STC.HitRate())
			}
		}
		fmt.Fprintf(w, "  %2d entries: %.1f%%\n", entries, 100*stats.Mean(rates))
	}

	// Average parallel accesses per step.
	var p1, p2, p3, p3noTHP []float64
	for _, app := range s.Settings.apps() {
		r, err := s.nested(sim.DesignNestedECPT, app, true)
		if err != nil {
			return err
		}
		st := r.NestedECPT
		p1 = append(p1, st.Par1.Value())
		p2 = append(p2, st.Par2.Value())
		p3 = append(p3, st.Par3.Value())
		r4, err := s.run(runKey{design: sim.DesignNestedECPT, app: app, tech: TechAdvanced})
		if err != nil {
			return err
		}
		p3noTHP = append(p3noTHP, r4.NestedECPT.Par3.Value())
	}
	fmt.Fprintf(w, "avg parallel accesses: step1=%.1f step2=%.1f step3=%.1f (no-THP step3=%.1f)\n",
		stats.Mean(p1), stats.Mean(p2), stats.Mean(p3), stats.Mean(p3noTHP))
	fmt.Fprintln(w, "(paper: 2.8 / 2.8 / 1.6, and 1.7 for step 3 without THP)")
	return nil
}

// Section95 prints the memory consumed by translation structures.
func (s *Suite) Section95(w io.Writer) error { return s.parallelized(w, s.section95) }

func (s *Suite) section95(w io.Writer) error {
	fmt.Fprintln(w, "Section 9.5: Memory consumption of translation structures")
	fmt.Fprintf(w, "%-9s | %9s %9s %9s | %9s %9s %9s | %9s\n",
		"App", "NR host", "NR guest", "NR total", "NE host", "NE guest", "NE total", "entries*8B")
	var nrT, neT, peT []float64
	for _, app := range s.Settings.apps() {
		nr, err := s.nested(sim.DesignNestedRadix, app, false)
		if err != nil {
			return err
		}
		ne, err := s.nested(sim.DesignNestedECPT, app, false)
		if err != nil {
			return err
		}
		mb := func(b uint64) float64 { return float64(b) / (1 << 20) }
		fmt.Fprintf(w, "%-9s | %9.1f %9.1f %9.1f | %9.1f %9.1f %9.1f | %9.1f\n",
			app,
			mb(nr.HostPTBytes), mb(nr.GuestPTBytes), mb(nr.HostPTBytes+nr.GuestPTBytes),
			mb(ne.HostPTBytes), mb(ne.GuestPTBytes), mb(ne.HostPTBytes+ne.GuestPTBytes),
			mb(ne.PTEntries*8))
		nrT = append(nrT, mb(nr.HostPTBytes+nr.GuestPTBytes))
		neT = append(neT, mb(ne.HostPTBytes+ne.GuestPTBytes))
		peT = append(peT, mb(ne.PTEntries*8))
	}
	fmt.Fprintf(w, "%-9s | %29.1f MB avg | %29.1f MB avg | %9.1f\n", "Mean",
		stats.Mean(nrT), stats.Mean(neT), stats.Mean(peT))
	fmt.Fprintln(w, "(paper at full scale: 84MB radix vs 97MB ECPT structures for 60MB of entries;")
	fmt.Fprintln(w, " the point is ECPTs use only slightly more memory than radix)")
	return nil
}

// Section96 compares Nested ECPTs against the other advanced designs:
// ideal Agile Paging, POM-TLB, and flat nested page tables.
func (s *Suite) Section96(w io.Writer) error { return s.parallelized(w, s.section96) }

func (s *Suite) section96(w io.Writer) error {
	fmt.Fprintln(w, "Section 9.6: Comparison to other advanced designs (4KB pages)")
	fmt.Fprintf(w, "%-9s %9s %9s %9s %9s %9s\n", "App", "NRadix", "Agile", "POM-TLB", "Flat", "NECPT")
	var cols [5][]float64
	for _, app := range s.Settings.apps() {
		base, err := s.baseline(app)
		if err != nil {
			return err
		}
		designs := []sim.Design{sim.DesignNestedRadix, sim.DesignAgileIdeal, sim.DesignPOMTLB, sim.DesignFlatNested, sim.DesignNestedECPT}
		row := fmt.Sprintf("%-9s", app)
		for i, d := range designs {
			k := runKey{design: d, app: app}
			if d == sim.DesignNestedECPT {
				k.tech = TechAdvanced
			}
			r, err := s.run(k)
			if err != nil {
				return err
			}
			v := speedup(base, r)
			cols[i] = append(cols[i], v)
			row += fmt.Sprintf(" %9.3f", v)
		}
		fmt.Fprintln(w, row)
	}
	fmt.Fprintf(w, "%-9s %9.3f %9.3f %9.3f %9.3f %9.3f\n", "GeoMean",
		stats.Geomean(cols[0]), stats.Geomean(cols[1]), stats.Geomean(cols[2]),
		stats.Geomean(cols[3]), stats.Geomean(cols[4]))
	fmt.Fprintln(w, "(paper: Nested ECPTs outperform ideal Agile by 16%, POM-TLB by 14%,")
	fmt.Fprintln(w, " flat nested tables by 12% without THP)")
	return nil
}

// All runs every experiment in paper order. With the parallel engine
// it plans the union of every figure's and section's runs up front, so
// the whole evaluation fans out as one sweep instead of one sweep per
// figure.
func (s *Suite) All(w io.Writer) error { return s.parallelized(w, s.all) }

func (s *Suite) all(w io.Writer) error {
	Table1(w)
	fmt.Fprintln(w)
	Table2(w, s.Settings)
	fmt.Fprintln(w)
	Table3(w)
	fmt.Fprintln(w)
	Table4(w, s.Settings)
	fmt.Fprintln(w)
	for _, f := range []func(io.Writer) error{
		s.figure9, s.figure10, s.figure11, s.figure12, s.figure13, s.figure14,
		s.section94, s.section95, s.section96,
	} {
		if err := f(w); err != nil {
			return err
		}
		fmt.Fprintln(w)
	}
	return nil
}
