package report

// Typed-address regression oracle: the addr.GVA/GPA/HPA refactor must
// be a pure re-typing — every simulated cycle count, walk class split,
// and rendered figure byte must match the untyped seed tree exactly.
// The pinned digests below were generated on the pre-refactor tree
// (PR 3 head) by rendering Figure 9 and §9.6 — together they exercise
// every walker design: the nested-radix baseline, all five NestedECPT
// technique levels, and the three §9.6 comparison baselines — on three
// fixed seeds. Any divergence means the refactor changed simulated
// behavior, not just types.

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"testing"
)

// typedRefactorDigests maps seed → SHA-256 of the rendered output,
// measured before the typed-address refactor.
var typedRefactorDigests = map[uint64]string{
	7:    "c5d15b211a3e9f777f403c7d5d26f4a1f04025a8f9f16c5b6254f23fc8d5790c",
	42:   "8de0bae770e6af48d061c59d4ce3ea5c6460a87d92f51ce068c99605b57f9d49",
	1337: "56678b947d4a001f9c0ced3cc9ceb39d1dc78eba9fa0e8241cded772398f9183",
}

// renderDigest runs the differential suite for one seed and hashes the
// full rendered output.
func renderDigest(t *testing.T, seed uint64) string {
	t.Helper()
	s := NewSuite(Settings{
		Warmup:  1_500,
		Measure: 4_000,
		Scale:   16,
		Seed:    seed,
		Apps:    []string{"GUPS"},
	})
	var b bytes.Buffer
	if err := s.Figure9(&b); err != nil {
		t.Fatalf("seed %d: Figure9: %v", seed, err)
	}
	if err := s.Section96(&b); err != nil {
		t.Fatalf("seed %d: Section96: %v", seed, err)
	}
	sum := sha256.Sum256(b.Bytes())
	return hex.EncodeToString(sum[:])
}

func TestTypedAddressRefactorBitIdentical(t *testing.T) {
	for _, seed := range []uint64{7, 42, 1337} {
		want := typedRefactorDigests[seed]
		got := renderDigest(t, seed)
		if got != want {
			t.Errorf("seed %d: rendered output digest %s, want %s (typed-address refactor changed simulated behavior)", seed, got, want)
		}
	}
}
