package report

import (
	"fmt"
	"io"
	"time"

	"nestedecpt/internal/serve"
)

// RenderServe prints one multi-VM service run: aggregate wall-clock
// throughput, per-VM fairness, walk-latency tail percentiles in
// simulated cycles, and the generation-churn counters. Output is a
// pure function of the Summary (slices are walked in index order, no
// wall-clock reads), so a deterministic run renders byte-identically.
func RenderServe(w io.Writer, s *serve.Summary) {
	fmt.Fprintf(w, "nestedserve       %d VMs x %s (scale 1/%d), %d workers, %d churn shards\n",
		s.VMs, s.Workload, s.Scale, s.Workers, s.Shards)
	fmt.Fprintf(w, "throughput        %.0f translations/sec (%d ops in %v)\n",
		s.TranslationsPerSec, s.TotalOps, s.Elapsed.Round(time.Millisecond))
	fmt.Fprintf(w, "fairness          %.4f (Jain's index over per-VM ops)\n", s.Fairness)
	if s.TotalOps > 0 {
		fmt.Fprintf(w, "walk latency      p50=%d p95=%d p99=%d cycles (mean %.1f)\n",
			s.P50, s.P95, s.P99, s.MeanLatency)
	}
	if min, max, spread := perVMSpread(s.PerVMOps); spread {
		fmt.Fprintf(w, "per-VM ops        min=%d max=%d over %d VMs\n", min, max, len(s.PerVMOps))
	}
	fmt.Fprintf(w, "generation churn  %d publishes, %d page ops, %d torn-walk retries\n",
		s.Publishes, s.ChurnOps, s.Retries)
	if s.ChurnProbes > 0 {
		fmt.Fprintf(w, "churn probes      %d walked, %d translated, %d faulted on unmapped pages\n",
			s.ChurnProbes, s.ChurnProbeHits, s.ChurnProbes-s.ChurnProbeHits)
	}
	fmt.Fprintf(w, "reclamation       %d generations pending after final collect\n", s.PendingReclaims)
}

// perVMSpread returns the min and max per-VM op counts; spread is
// false for an empty slice.
func perVMSpread(ops []uint64) (min, max uint64, spread bool) {
	if len(ops) == 0 {
		return 0, 0, false
	}
	min, max = ops[0], ops[0]
	for _, n := range ops[1:] {
		if n < min {
			min = n
		}
		if n > max {
			max = n
		}
	}
	return min, max, true
}
