package report

import (
	"fmt"
	"io"

	"nestedecpt/internal/sim"
	"nestedecpt/internal/stats"
)

// speedup returns base/x as a speedup factor.
func speedup(base, x *sim.Result) float64 {
	if x.Cycles == 0 {
		return 0
	}
	return float64(base.Cycles) / float64(x.Cycles)
}

// Figure9 prints the speedups of every configuration over Nested Radix
// (4KB), per application and as a geometric mean, including the
// Advanced-technique breakdown of the Nested ECPT bars.
func (s *Suite) Figure9(w io.Writer) error { return s.parallelized(w, s.figure9) }

func (s *Suite) figure9(w io.Writer) error {
	fmt.Fprintln(w, "Figure 9: Speedup over Nested Radix (4KB pages)")
	header := fmt.Sprintf("%-9s %7s %7s %7s %7s | %7s %7s %7s %7s | %7s %7s %7s %7s",
		"App", "NRadix", "NR-THP", "NECPT", "NE-THP", "Plain", "+STC", "+Step1", "+Step3", "Hybrid", "Hy-THP", "Radix", "ECPT")
	fmt.Fprintln(w, header)

	type cols struct{ vals []float64 }
	var all []cols
	for _, app := range s.Settings.apps() {
		base, err := s.baseline(app)
		if err != nil {
			return err
		}
		var vals []float64
		// Nested radix (baseline and THP).
		for _, thp := range []bool{false, true} {
			r, err := s.run(runKey{design: sim.DesignNestedRadix, app: app, thp: thp})
			if err != nil {
				return err
			}
			vals = append(vals, speedup(base, r))
		}
		// Advanced nested ECPTs, both page modes.
		for _, thp := range []bool{false, true} {
			r, err := s.run(runKey{design: sim.DesignNestedECPT, app: app, thp: thp, tech: TechAdvanced})
			if err != nil {
				return err
			}
			vals = append(vals, speedup(base, r))
		}
		// Technique breakdown (4KB pages).
		for _, tl := range []TechLevel{TechPlain, TechSTC, TechStep1, TechStep3} {
			r, err := s.run(runKey{design: sim.DesignNestedECPT, app: app, tech: tl})
			if err != nil {
				return err
			}
			vals = append(vals, speedup(base, r))
		}
		// Hybrid.
		for _, thp := range []bool{false, true} {
			r, err := s.run(runKey{design: sim.DesignNestedHybrid, app: app, thp: thp})
			if err != nil {
				return err
			}
			vals = append(vals, speedup(base, r))
		}
		// Native designs, 4KB pages (for the mean bars).
		for _, d := range []sim.Design{sim.DesignRadix, sim.DesignECPT} {
			r, err := s.run(runKey{design: d, app: app})
			if err != nil {
				return err
			}
			vals = append(vals, speedup(base, r))
		}
		all = append(all, cols{vals})
		fmt.Fprintf(w, "%-9s %s\n", app, fmtRow(vals))
	}
	// Geometric means.
	n := len(all[0].vals)
	geo := make([]float64, n)
	for i := 0; i < n; i++ {
		col := make([]float64, 0, len(all))
		for _, c := range all {
			col = append(col, c.vals[i])
		}
		geo[i] = stats.Geomean(col)
	}
	fmt.Fprintf(w, "%-9s %s\n", "GeoMean", fmtRow(geo))
	fmt.Fprintln(w, "(paper: NECPT 1.19x, NE-THP 1.24x over the respective radix configs;")
	fmt.Fprintln(w, " Plain only ~1.03-1.05x; columns 5-8 are cumulative technique stacks)")
	return nil
}

func fmtRow(vals []float64) string {
	out := ""
	for i, v := range vals {
		if i == 4 || i == 8 {
			out += " |"
		}
		out += fmt.Sprintf(" %7.3f", v)
	}
	return out
}

// Figure10 prints MMU busy cycles of the four nested configurations
// normalized to Nested Radix.
func (s *Suite) Figure10(w io.Writer) error { return s.parallelized(w, s.figure10) }

func (s *Suite) figure10(w io.Writer) error {
	fmt.Fprintln(w, "Figure 10: MMU busy cycles, normalized to Nested Radix (4KB)")
	fmt.Fprintf(w, "%-9s %8s %8s %8s %8s\n", "App", "NRadix", "NR-THP", "NECPT", "NE-THP")
	var cols [4][]float64
	for _, app := range s.Settings.apps() {
		base, err := s.baseline(app)
		if err != nil {
			return err
		}
		var row [4]float64
		i := 0
		for _, d := range []sim.Design{sim.DesignNestedRadix, sim.DesignNestedECPT} {
			for _, thp := range []bool{false, true} {
				r, err := s.nested(d, app, thp)
				if err != nil {
					return err
				}
				row[i] = float64(r.MMUBusyCycles) / float64(base.MMUBusyCycles)
				cols[i] = append(cols[i], row[i])
				i++
			}
		}
		// Reorder to NRadix, NR-THP, NECPT, NE-THP (already in order).
		fmt.Fprintf(w, "%-9s %8.3f %8.3f %8.3f %8.3f\n", app, row[0], row[1], row[2], row[3])
	}
	fmt.Fprintf(w, "%-9s %8.3f %8.3f %8.3f %8.3f\n", "Mean",
		stats.Mean(cols[0]), stats.Mean(cols[1]), stats.Mean(cols[2]), stats.Mean(cols[3]))
	fmt.Fprintln(w, "(paper: Nested ECPTs use 25% / 31% fewer MMU busy cycles for 4KB / THP)")
	return nil
}

// Figure11 prints the page-walk latency histograms for MUMmer under
// Nested Radix THP and Nested ECPTs THP.
func (s *Suite) Figure11(w io.Writer) error { return s.parallelized(w, s.figure11) }

func (s *Suite) figure11(w io.Writer) error {
	fmt.Fprintln(w, "Figure 11: Nested page-walk latency histogram (MUMmer, THP)")
	rr, err := s.nested(sim.DesignNestedRadix, "MUMmer", true)
	if err != nil {
		return err
	}
	re, err := s.nested(sim.DesignNestedECPT, "MUMmer", true)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "%-12s %12s %12s\n", "Cycles", "NestedRadix", "NestedECPTs")
	maxBins := rr.WalkLatency.NumBins()
	if re.WalkLatency.NumBins() > maxBins {
		maxBins = re.WalkLatency.NumBins()
	}
	// Aggregate into 40-cycle display bins.
	const group = 2
	for b := 0; b < maxBins; b += group {
		var pr, pe float64
		var mid float64
		for g := 0; g < group; g++ {
			m, p1 := rr.WalkLatency.Bin(b + g)
			_, p2 := re.WalkLatency.Bin(b + g)
			pr += p1
			pe += p2
			mid = m
		}
		if pr < 0.002 && pe < 0.002 {
			continue
		}
		fmt.Fprintf(w, "%-12.0f %12.4f %12.4f\n", mid, pr, pe)
	}
	fmt.Fprintf(w, "mean: radix=%.0f ecpt=%.0f   p95: radix=%d ecpt=%d\n",
		rr.WalkLatency.Mean(), re.WalkLatency.Mean(),
		rr.WalkLatency.Percentile(0.95), re.WalkLatency.Percentile(0.95))
	fmt.Fprintln(w, "(paper: radix shows a long sequential-pointer-chase tail; ECPT walks")
	fmt.Fprintln(w, " complete in about the cost of its parallel steps)")
	return nil
}

// Figure12 prints the per-interval PTE- and PMD-hCWT hit rates in the
// Step-3 hCWC for Nested ECPTs THP.
func (s *Suite) Figure12(w io.Writer) error { return s.parallelized(w, s.figure12) }

func (s *Suite) figure12(w io.Writer) error {
	fmt.Fprintln(w, "Figure 12: hCWC hit rates of PTE (left) and PMD (right) hCWT entries")
	fmt.Fprintf(w, "%-9s | %10s %10s %8s | %10s %10s %8s\n",
		"", "THP", "", "", "4KB", "", "")
	fmt.Fprintf(w, "%-9s | %10s %10s %8s | %10s %10s %8s\n",
		"App", "PTE rate", "PMD rate", "PTE off", "PTE rate", "PMD rate", "PTE off")
	for _, app := range s.Settings.apps() {
		rt, err := s.nested(sim.DesignNestedECPT, app, true)
		if err != nil {
			return err
		}
		r4, err := s.nested(sim.DesignNestedECPT, app, false)
		if err != nil {
			return err
		}
		st, s4 := rt.NestedECPT, r4.NestedECPT
		fmt.Fprintf(w, "%-9s | %10.3f %10.3f %8d | %10.3f %10.3f %8d\n", app,
			st.PTESeries.Mean(), st.PMDSeries.Mean(), st.AdaptDisabled,
			s4.PTESeries.Mean(), s4.PMDSeries.Mean(), s4.AdaptDisabled)
	}
	fmt.Fprintln(w, "(paper thresholds: disable PTE caching below 0.5; re-enable when PMD > 0.85;")
	fmt.Fprintln(w, " GUPS and SysBench have low rates and converge to disabled)")
	return nil
}

// Figure13 prints the MMU RPKI and L2/L3 MPKI characterization.
func (s *Suite) Figure13(w io.Writer) error { return s.parallelized(w, s.figure13) }

func (s *Suite) figure13(w io.Writer) error {
	fmt.Fprintln(w, "Figure 13: MMU requests and cache misses per kilo instruction")
	fmt.Fprintf(w, "%-9s | %7s %7s %7s %7s | %7s %7s %7s %7s | %7s %7s %7s %7s\n",
		"", "RPKI", "", "", "", "L2MPKI", "", "", "", "L3MPKI", "", "", "")
	fmt.Fprintf(w, "%-9s | %7s %7s %7s %7s | %7s %7s %7s %7s | %7s %7s %7s %7s\n",
		"App", "NR", "NR-THP", "NE", "NE-THP", "NR", "NR-THP", "NE", "NE-THP", "NR", "NR-THP", "NE", "NE-THP")
	var rpki, l2, l3 [4][]float64
	for _, app := range s.Settings.apps() {
		var rs [4]*sim.Result
		i := 0
		for _, d := range []sim.Design{sim.DesignNestedRadix, sim.DesignNestedECPT} {
			for _, thp := range []bool{false, true} {
				r, err := s.nested(d, app, thp)
				if err != nil {
					return err
				}
				rs[i] = r
				rpki[i] = append(rpki[i], r.MMURPKI())
				l2[i] = append(l2[i], r.L2MPKI())
				l3[i] = append(l3[i], r.L3MPKI())
				i++
			}
		}
		fmt.Fprintf(w, "%-9s | %7.1f %7.1f %7.1f %7.1f | %7.1f %7.1f %7.1f %7.1f | %7.1f %7.1f %7.1f %7.1f\n",
			app,
			rs[0].MMURPKI(), rs[1].MMURPKI(), rs[2].MMURPKI(), rs[3].MMURPKI(),
			rs[0].L2MPKI(), rs[1].L2MPKI(), rs[2].L2MPKI(), rs[3].L2MPKI(),
			rs[0].L3MPKI(), rs[1].L3MPKI(), rs[2].L3MPKI(), rs[3].L3MPKI())
	}
	fmt.Fprintf(w, "%-9s | %7.1f %7.1f %7.1f %7.1f | %7.1f %7.1f %7.1f %7.1f | %7.1f %7.1f %7.1f %7.1f\n",
		"Mean",
		stats.Mean(rpki[0]), stats.Mean(rpki[1]), stats.Mean(rpki[2]), stats.Mean(rpki[3]),
		stats.Mean(l2[0]), stats.Mean(l2[1]), stats.Mean(l2[2]), stats.Mean(l2[3]),
		stats.Mean(l3[0]), stats.Mean(l3[1]), stats.Mean(l3[2]), stats.Mean(l3[3]))
	fmt.Fprintln(w, "(paper: ECPTs issue 13-15% more MMU requests but have ~10% lower L3 MPKI)")
	return nil
}

// Figure14 prints the Direct/Size/Partial/Complete walk breakdown for
// the host (left) and guest (right) under Nested ECPTs THP.
func (s *Suite) Figure14(w io.Writer) error { return s.parallelized(w, s.figure14) }

func (s *Suite) figure14(w io.Writer) error {
	fmt.Fprintln(w, "Figure 14: Walk-type breakdown, Nested ECPTs THP (host | guest), %")
	fmt.Fprintf(w, "%-9s | %7s %7s %7s %7s | %7s %7s %7s %7s\n",
		"App", "Direct", "Size", "Partial", "Compl", "Direct", "Size", "Partial", "Compl")
	classes := []string{"Direct", "Size", "Partial", "Complete"}
	for _, app := range s.Settings.apps() {
		r, err := s.nested(sim.DesignNestedECPT, app, true)
		if err != nil {
			return err
		}
		st := r.NestedECPT
		row := fmt.Sprintf("%-9s |", app)
		for _, c := range classes {
			row += fmt.Sprintf(" %7.1f", 100*st.HostClasses.Fraction(c))
		}
		row += " |"
		for _, c := range classes {
			row += fmt.Sprintf(" %7.1f", 100*st.GuestClasses.Fraction(c))
		}
		fmt.Fprintln(w, row)
	}
	fmt.Fprintln(w, "(paper: host walks ~90% direct on average; guest walks ~82% size walks,")
	fmt.Fprintln(w, " except GUPS/SysBench/MUMmer where huge pages make direct walks dominate)")
	return nil
}
