package report

import (
	"fmt"
	"io"

	"nestedecpt/internal/areamodel"
	"nestedecpt/internal/sim"
	"nestedecpt/internal/workload"
)

// Table1 prints the modeled page-table architecture configurations.
func Table1(w io.Writer) {
	fmt.Fprintln(w, "Table 1: Modeled page table architecture configurations")
	fmt.Fprintf(w, "%-12s %-20s %s\n", "Native", "Nested", "Description")
	rows := [][3]string{
		{"Radix", "Nested Radix", "Radix page tables with only 4KB pages"},
		{"Radix THP", "Nested Radix THP", "Radix page tables with 4KB+huge pages"},
		{"ECPTs", "Nested ECPTs", "Advanced ECPTs with only 4KB pages"},
		{"ECPTs THP", "Nested ECPTs THP", "Advanced ECPTs with 4KB + huge pages"},
		{"-", "Nested Hybrid", "Hybrid design with only 4KB pages"},
		{"-", "Nested Hybrid THP", "Hybrid design with 4KB + huge pages"},
	}
	for _, r := range rows {
		fmt.Fprintf(w, "%-12s %-20s %s\n", r[0], r[1], r[2])
	}
}

// Table2 prints the effective architectural parameters for the given
// settings, both the paper's nominal values and the scaled values a
// simulation actually uses.
func Table2(w io.Writer, s Settings) {
	fmt.Fprintln(w, "Table 2: Architectural parameters (nominal -> scaled)")
	cfg := sim.DefaultConfig(sim.DesignNestedECPT, "GUPS", true)
	cfg.WorkloadOpts = workload.Options{Scale: s.Scale, Seed: s.Seed}
	m, err := sim.NewMachine(cfg)
	if err != nil {
		fmt.Fprintf(w, "error: %v\n", err)
		return
	}
	eff := m.EffectiveConfig()
	fmt.Fprintf(w, "%-28s %-22s %s\n", "Structure", "Paper (Table 2)", fmt.Sprintf("Scaled (1/%d footprint)", s.Scale))
	fmt.Fprintf(w, "%-28s %-22s %d entries\n", "L1 DTLB (4KB)", "64 entries 4-way", eff.TLB.L1.PerSize[0].Entries)
	fmt.Fprintf(w, "%-28s %-22s %d entries\n", "L2 DTLB (4KB)", "1024 entries", eff.TLB.L2.PerSize[0].Entries)
	fmt.Fprintf(w, "%-28s %-22s %d/%d/%d KB\n", "L1/L2/L3 caches", "32KB/512KB/16MB",
		eff.Hierarchy.L1.SizeBytes>>10, eff.Hierarchy.L2.SizeBytes>>10, eff.Hierarchy.L3.SizeBytes>>10)
	fmt.Fprintf(w, "%-28s %-22s %d per level\n", "PWC", "3 levels x 32", eff.RadixWalk.PWCEntriesPerLevel)
	fmt.Fprintf(w, "%-28s %-22s %d per level\n", "NPWC", "16 per level", eff.RadixWalk.NPWCEntriesPerLevel)
	fmt.Fprintf(w, "%-28s %-22s %d entries\n", "NTLB", "24 entries", eff.RadixWalk.NTLBEntries)
	fmt.Fprintf(w, "%-28s %-22s PMD=%d PUD=%d\n", "gCWC", "16 PMD + 2 PUD", eff.NestedECPT.GuestCWC.PMD, eff.NestedECPT.GuestCWC.PUD)
	fmt.Fprintf(w, "%-28s %-22s PTE=%d\n", "hCWC (Step 1)", "4 PTE", eff.NestedECPT.HostCWC1.PTE)
	fmt.Fprintf(w, "%-28s %-22s PTE=%d PMD=%d PUD=%d\n", "hCWC (Step 3)", "16 PTE + 4 PMD + 2 PUD",
		eff.NestedECPT.HostCWC3.PTE, eff.NestedECPT.HostCWC3.PMD, eff.NestedECPT.HostCWC3.PUD)
	fmt.Fprintf(w, "%-28s %-22s %d entries\n", "STC", "10 entries", eff.NestedECPT.STCEntries)
	fmt.Fprintf(w, "%-28s %-22s %s\n", "Hash functions", "CRC, 2 cycles", "seeded CRC+mix, 2 cycles")
	fmt.Fprintln(w, "(see DESIGN.md for the scaling rules and their rationale)")
}

// Table3 prints the analytic area/power estimates next to the paper's
// CACTI numbers.
func Table3(w io.Writer) {
	fmt.Fprintln(w, "Table 3: Area and power of MMU caching structures (22nm)")
	fmt.Fprintf(w, "%-15s %10s %12s %12s %14s\n", "Configuration", "Size (B)", "Area (mm2)", "Power (mW)", "Paper (B/mm2/mW)")
	paper := areamodel.PaperTable3()
	for _, d := range areamodel.Table3Designs() {
		bytes, area, power := areamodel.Estimate(d)
		p := paper[d.Name]
		fmt.Fprintf(w, "%-15s %10d %12.3f %12.2f %6.0f/%.2f/%.1f\n",
			d.Name, bytes, area, power, p[0], p[1], p[2])
	}
}

// Table4 prints the applications with paper and scaled footprints.
func Table4(w io.Writer, s Settings) {
	fmt.Fprintln(w, "Table 4: Applications evaluated")
	fmt.Fprintf(w, "%-16s %-12s %-10s %12s %14s\n", "Domain", "Suite", "Name", "Paper (GB)", "Scaled (MB)")
	for _, in := range workload.Table4() {
		g, err := workload.New(in.Name, workload.Options{Scale: s.Scale, Seed: s.Seed})
		if err != nil {
			fmt.Fprintf(w, "error: %v\n", err)
			return
		}
		fmt.Fprintf(w, "%-16s %-12s %-10s %12.1f %14.1f\n",
			in.Domain, in.Suite, in.Name, in.PaperFootprintGB, float64(g.Footprint())/(1<<20))
	}
}
