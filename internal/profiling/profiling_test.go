package profiling_test

import (
	"bytes"
	"os"
	"os/exec"
	"path/filepath"
	"testing"

	"nestedecpt/internal/profiling"
)

// The CPU profiler buffers samples until StopCPUProfile, so a process
// that exits without calling stop leaves a truncated, unreadable file.
// These tests re-exec the test binary and drive the three exit paths
// the CLIs have — normal return, flag-parse error, and panic with
// recover — asserting that the profiles on disk are complete on every
// one of them.

const helperEnv = "NESTEDECPT_PROFILING_HELPER"

// TestHelperProcess is not a real test: it is the body of the
// subprocess. It runs only when re-exec'd with helperEnv set.
func TestHelperProcess(t *testing.T) {
	scenario := os.Getenv(helperEnv)
	if scenario == "" {
		t.Skip("helper process body; set " + helperEnv + " to run")
	}
	cpu := os.Getenv("NESTEDECPT_PROFILING_CPU")
	mem := os.Getenv("NESTEDECPT_PROFILING_MEM")
	stop, err := profiling.Start(cpu, mem)
	if err != nil {
		os.Stderr.WriteString(err.Error() + "\n")
		os.Exit(4)
	}
	exit := func(code int) {
		if err := stop(); err != nil {
			os.Stderr.WriteString(err.Error() + "\n")
			os.Exit(5)
		}
		os.Exit(code)
	}
	// Burn a little CPU and heap so the profiles carry samples.
	work := make([]uint64, 1<<12)
	for i := 0; i < 1<<20; i++ {
		work[i%len(work)] ^= uint64(i) * 0x9E3779B97F4A7C15
	}
	_ = work
	switch scenario {
	case "normal":
		exit(0)
	case "flagerror":
		// Mirrors the CLIs' flag-validation failure: usage to stderr,
		// profiles still flushed, conventional exit code 2.
		os.Stderr.WriteString("usage: bad flag\n")
		exit(2)
	case "panic":
		defer func() {
			if recover() != nil {
				exit(3)
			}
		}()
		panic("simulated crash")
	default:
		os.Stderr.WriteString("unknown scenario " + scenario + "\n")
		os.Exit(6)
	}
}

// gzipMagic prefixes every pprof profile: they are gzip-compressed
// protobufs, and a truncated CPU profile (stop never called) fails
// this check because the StartCPUProfile header is only flushed on
// stop.
var gzipMagic = []byte{0x1f, 0x8b}

func checkProfile(t *testing.T, path, kind string) {
	t.Helper()
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%s profile: %v", kind, err)
	}
	if len(raw) < len(gzipMagic) || !bytes.Equal(raw[:2], gzipMagic) {
		t.Errorf("%s profile %s: not a gzipped profile (%d bytes, prefix % x)",
			kind, path, len(raw), raw[:min(len(raw), 2)])
	}
}

func TestProfilesFlushedOnAllExitPaths(t *testing.T) {
	exe, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	scenarios := []struct {
		name     string
		wantExit int
	}{
		{"normal", 0},
		{"flagerror", 2},
		{"panic", 3},
	}
	for _, sc := range scenarios {
		t.Run(sc.name, func(t *testing.T) {
			dir := t.TempDir()
			cpu := filepath.Join(dir, "cpu.pprof")
			mem := filepath.Join(dir, "mem.pprof")
			cmd := exec.Command(exe, "-test.run", "^TestHelperProcess$")
			cmd.Env = append(os.Environ(),
				helperEnv+"="+sc.name,
				"NESTEDECPT_PROFILING_CPU="+cpu,
				"NESTEDECPT_PROFILING_MEM="+mem,
			)
			out, err := cmd.CombinedOutput()
			exit := cmd.ProcessState.ExitCode()
			if exit != sc.wantExit {
				t.Fatalf("exit = %d, want %d (err %v)\noutput:\n%s", exit, sc.wantExit, err, out)
			}
			checkProfile(t, cpu, "cpu")
			checkProfile(t, mem, "heap")
		})
	}
}

// TestStartErrors pins the error paths that must not leave a profiler
// running: an uncreatable CPU path fails up front, and an empty
// configuration yields a no-op stop.
func TestStartErrors(t *testing.T) {
	if _, err := profiling.Start(filepath.Join(t.TempDir(), "no", "such", "dir", "cpu.pprof"), ""); err == nil {
		t.Fatal("Start with uncreatable cpu path: want error, got nil")
	}
	stop, err := profiling.Start("", "")
	if err != nil {
		t.Fatal(err)
	}
	if err := stop(); err != nil {
		t.Fatalf("no-op stop: %v", err)
	}
}
