// Package profiling wires the standard pprof profilers into the
// command-line tools. Both CLIs expose -cpuprofile and -memprofile
// flags; the resulting files feed `go tool pprof` (see EXPERIMENTS.md,
// "Profiling the simulator").
package profiling

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Start begins CPU profiling to cpuPath (if non-empty) and arranges
// for a heap profile at memPath (if non-empty). It returns a stop
// function that flushes and closes both profiles; callers must invoke
// it on every exit path, including error exits, or the CPU profile is
// truncated and unreadable.
func Start(cpuPath, memPath string) (stop func() error, err error) {
	var cpuFile *os.File
	if cpuPath != "" {
		cpuFile, err = os.Create(cpuPath)
		if err != nil {
			return nil, fmt.Errorf("profiling: %w", err)
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, fmt.Errorf("profiling: %w", err)
		}
	}
	return func() error {
		var first error
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil && first == nil {
				first = fmt.Errorf("profiling: %w", err)
			}
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				if first == nil {
					first = fmt.Errorf("profiling: %w", err)
				}
				return first
			}
			// An up-to-date live-heap profile needs a collection first.
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil && first == nil {
				first = fmt.Errorf("profiling: %w", err)
			}
			if err := f.Close(); err != nil && first == nil {
				first = fmt.Errorf("profiling: %w", err)
			}
		}
		return first
	}, nil
}
