// VM density scenario: a cloud host deciding which page-table design
// to deploy. Compares all three nested designs (plus the §9.6
// baselines) on the two server workloads, reporting the translation
// overhead that limits consolidation.
package main

import (
	"flag"
	"fmt"
	"log"

	"nestedecpt"
)

func main() {
	log.SetFlags(0)
	accesses := flag.Uint64("accesses", 120_000, "measured accesses per run")
	flag.Parse()

	designs := []struct {
		d    nestedecpt.Design
		name string
	}{
		{nestedecpt.NestedRadix, "Nested Radix"},
		{nestedecpt.NestedHybrid, "Nested Hybrid"},
		{nestedecpt.NestedECPT, "Nested ECPTs"},
		{nestedecpt.AgileIdeal, "Ideal Agile"},
		{nestedecpt.POMTLB, "POM-TLB"},
		{nestedecpt.FlatNested, "Flat Nested"},
	}

	for _, app := range []string{"SysBench", "GUPS"} {
		fmt.Printf("== %s (virtualized, THP) ==\n", app)
		fmt.Printf("%-14s %11s %10s %12s %12s\n", "Design", "Cycles", "IPC", "MMU busy %", "Mean walk")
		var base uint64
		for _, ds := range designs {
			cfg := nestedecpt.DefaultConfig(ds.d, app, true)
			cfg.WarmupAccesses, cfg.MeasureAccesses = 40_000, *accesses
			res, err := nestedecpt.Run(cfg)
			if err != nil {
				log.Fatalf("%s/%s: %v", app, ds.name, err)
			}
			if base == 0 {
				base = res.Cycles
			}
			fmt.Printf("%-14s %11d %10.3f %11.1f%% %9.0f cyc  (%.3fx)\n",
				ds.name, res.Cycles, res.IPC(),
				100*float64(res.MMUBusyCycles)/float64(res.Cycles),
				res.WalkLatency.Mean(),
				float64(base)/float64(res.Cycles))
		}
		fmt.Println()
	}
	fmt.Println("Lower MMU-busy share means more of the machine goes to guests.")
}
