// VM density scenario: a cloud host deciding which page-table design
// to deploy, then measuring how many guests that choice lets it pack.
//
// Phase 1 compares the nested designs (plus the §9.6 baselines) on the
// two server workloads. Every (design, app) guest simulates
// concurrently — each run owns its seeds, so the table is identical at
// any parallelism — and prints in Table 1 order.
//
// Phase 2 is the consolidation measurement itself: a multi-VM
// translation service (nestedecpt.Serve) where every guest shares one
// host ECPT set and a pool of lock-free walkers translates against
// epoch-versioned snapshots while churn publishes new generations.
// This is the same engine and configuration CI's throughput smoke job
// and the cmd/nestedserve CLI use.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"sync"
	"time"

	"nestedecpt"
)

type cell struct {
	design nestedecpt.Design
	name   string
	app    string
	res    *nestedecpt.Result
	err    error
}

func main() {
	log.SetFlags(0)
	accesses := flag.Uint64("accesses", 120_000, "measured accesses per comparison run")
	vms := flag.Int("vms", 16, "guests in the serve phase")
	duration := flag.Duration("duration", 500*time.Millisecond, "serve phase length")
	flag.Parse()

	designs := []struct {
		d    nestedecpt.Design
		name string
	}{
		{nestedecpt.NestedRadix, "Nested Radix"},
		{nestedecpt.NestedHybrid, "Nested Hybrid"},
		{nestedecpt.NestedECPT, "Nested ECPTs"},
		{nestedecpt.AgileIdeal, "Ideal Agile"},
		{nestedecpt.POMTLB, "POM-TLB"},
		{nestedecpt.FlatNested, "Flat Nested"},
	}
	apps := []string{"SysBench", "GUPS"}

	// Phase 1: every guest at once. Each simulation derives all its
	// randomness from its own config seed, so concurrent completion
	// order cannot change any number in the table.
	cells := make([]cell, 0, len(designs)*len(apps))
	for _, app := range apps {
		for _, ds := range designs {
			cells = append(cells, cell{design: ds.d, name: ds.name, app: app})
		}
	}
	var wg sync.WaitGroup
	for i := range cells {
		wg.Add(1)
		go func(c *cell) {
			defer wg.Done()
			cfg := nestedecpt.DefaultConfig(c.design, c.app, true)
			cfg.WarmupAccesses, cfg.MeasureAccesses = 40_000, *accesses
			c.res, c.err = nestedecpt.Run(cfg)
		}(&cells[i])
	}
	wg.Wait()

	i := 0
	for _, app := range apps {
		fmt.Printf("== %s (virtualized, THP) ==\n", app)
		fmt.Printf("%-14s %11s %10s %12s %12s\n", "Design", "Cycles", "IPC", "MMU busy %", "Mean walk")
		var base uint64
		for range designs {
			c := cells[i]
			i++
			if c.err != nil {
				log.Fatalf("%s/%s: %v", c.app, c.name, c.err)
			}
			if base == 0 {
				base = c.res.Cycles
			}
			fmt.Printf("%-14s %11d %10.3f %11.1f%% %9.0f cyc  (%.3fx)\n",
				c.name, c.res.Cycles, c.res.IPC(),
				100*float64(c.res.MMUBusyCycles)/float64(c.res.Cycles),
				c.res.WalkLatency.Mean(),
				float64(base)/float64(c.res.Cycles))
		}
		fmt.Println()
	}
	fmt.Println("Lower MMU-busy share means more of the machine goes to guests.")
	fmt.Println()

	// Phase 2: pack the winning design. All guests translate at once
	// through the shared host ECPT set, lock-free.
	cfg := nestedecpt.VMDensityServeConfig()
	cfg.VMs = *vms
	cfg.Duration = *duration
	fmt.Printf("== consolidation: %d concurrent guests on nested ECPTs ==\n", cfg.VMs)
	sum, err := nestedecpt.Serve(context.Background(), cfg)
	if err != nil {
		log.Fatalf("serve: %v", err)
	}
	nestedecpt.RenderServe(os.Stdout, sum)
}
