// Migration path scenario (§6): an operator moving a fleet from nested
// radix paging toward Nested ECPTs without touching guest kernels.
// Shows the intermediate Hybrid design (legacy radix guests over an
// ECPT host) against both endpoints, and the technique stack that
// turns the Plain design into the Advanced one.
package main

import (
	"flag"
	"fmt"
	"log"

	"nestedecpt"
)

func main() {
	log.SetFlags(0)
	app := flag.String("app", "SysBench", "application to migrate")
	thp := flag.Bool("thp", true, "enable transparent huge pages")
	accesses := flag.Uint64("accesses", 120_000, "measured accesses per run")
	flag.Parse()

	run := func(d nestedecpt.Design, tech *nestedecpt.Techniques) *nestedecpt.Result {
		cfg := nestedecpt.DefaultConfig(d, *app, *thp)
		cfg.WarmupAccesses, cfg.MeasureAccesses = 40_000, *accesses
		if tech != nil {
			cfg.Tech = *tech
			cfg.NestedECPT.STCEntries = 0 // re-derive the walker config
		}
		res, err := nestedecpt.Run(cfg)
		if err != nil {
			log.Fatalf("%v: %v", d, err)
		}
		return res
	}

	fmt.Printf("Migration path for %s (THP=%v)\n\n", *app, *thp)
	fmt.Println("Step 0: today — nested radix paging (guest radix + host radix)")
	base := run(nestedecpt.NestedRadix, nil)
	fmt.Printf("        %d cycles, mean walk %.0f\n\n", base.Cycles, base.WalkLatency.Mean())

	fmt.Println("Step 1: migrate the HOST only — Hybrid design (§6)")
	fmt.Println("        guest kernels unchanged; hypervisor switches to ECPTs")
	hy := run(nestedecpt.NestedHybrid, nil)
	fmt.Printf("        %d cycles (%.3fx), mean walk %.0f\n\n",
		hy.Cycles, float64(base.Cycles)/float64(hy.Cycles), hy.WalkLatency.Mean())

	fmt.Println("Step 2: migrate guests — Plain Nested ECPTs (§3)")
	plain := nestedecpt.PlainTechniques()
	pl := run(nestedecpt.NestedECPT, &plain)
	fmt.Printf("        %d cycles (%.3fx), mean walk %.0f\n\n",
		pl.Cycles, float64(base.Cycles)/float64(pl.Cycles), pl.WalkLatency.Mean())

	fmt.Println("Step 3: enable the §4 techniques one by one")
	stack := []struct {
		name string
		tech nestedecpt.Techniques
	}{
		{"+ STC", nestedecpt.Techniques{STC: true}},
		{"+ Step-1 PTE-hCWT caching", nestedecpt.Techniques{STC: true, Step1PTECaching: true}},
		{"+ Step-3 adaptive caching", nestedecpt.Techniques{STC: true, Step1PTECaching: true, Step3AdaptivePTE: true}},
		{"+ 4KB page-table knowledge", nestedecpt.AdvancedTechniques()},
	}
	for _, st := range stack {
		tech := st.tech
		r := run(nestedecpt.NestedECPT, &tech)
		fmt.Printf("        %-28s %d cycles (%.3fx)\n",
			st.name, r.Cycles, float64(base.Cycles)/float64(r.Cycles))
	}
}
