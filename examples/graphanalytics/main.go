// Graph analytics scenario: the workload class that motivates the
// paper's introduction. Runs the GraphBIG kernels under virtualized
// translation and shows where each design spends its translation time,
// including the walk-class breakdown the CWCs achieve.
package main

import (
	"flag"
	"fmt"
	"log"

	"nestedecpt"
)

func main() {
	log.SetFlags(0)
	thp := flag.Bool("thp", true, "enable transparent huge pages")
	accesses := flag.Uint64("accesses", 120_000, "measured accesses per kernel")
	flag.Parse()

	kernels := []string{"BC", "BFS", "CC", "DC", "DFS", "PR", "SSSP", "TC"}
	fmt.Printf("GraphBIG kernels, THP=%v\n", *thp)
	fmt.Printf("%-6s %9s %9s %8s %10s %s\n",
		"Kernel", "NR cyc/op", "NE cyc/op", "Speedup", "Walks/Kop", "NE guest walk classes")

	for _, k := range kernels {
		nr := nestedecpt.DefaultConfig(nestedecpt.NestedRadix, k, *thp)
		nr.WarmupAccesses, nr.MeasureAccesses = 40_000, *accesses
		rr, err := nestedecpt.Run(nr)
		if err != nil {
			log.Fatalf("%s nested radix: %v", k, err)
		}

		ne := nestedecpt.DefaultConfig(nestedecpt.NestedECPT, k, *thp)
		ne.WarmupAccesses, ne.MeasureAccesses = 40_000, *accesses
		re, err := nestedecpt.Run(ne)
		if err != nil {
			log.Fatalf("%s nested ECPT: %v", k, err)
		}

		classes := ""
		if re.NestedECPT != nil {
			classes = re.NestedECPT.GuestClasses.String()
		}
		fmt.Printf("%-6s %9.1f %9.1f %7.3fx %10.1f %s\n",
			k,
			float64(rr.Cycles)/float64(rr.MemAccesses),
			float64(re.Cycles)/float64(re.MemAccesses),
			float64(rr.Cycles)/float64(re.Cycles),
			1000*float64(re.Walks)/float64(re.MemAccesses),
			classes)
	}
	fmt.Println("\nGuest size walks dominate with 4KB pages (no PTE-gCWT exists);")
	fmt.Println("with THP, huge-page-friendly kernels shift to cheap direct walks.")
}
