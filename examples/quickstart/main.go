// Quickstart: simulate GUPS under the two headline designs and print
// the comparison the paper's abstract makes — nested radix paging
// versus parallel nested translation with elastic cuckoo page tables.
package main

import (
	"fmt"
	"log"

	"nestedecpt"
)

func main() {
	log.SetFlags(0)

	for _, thp := range []bool{false, true} {
		mode := "4KB pages"
		if thp {
			mode = "4KB + 2MB pages (THP)"
		}
		fmt.Printf("== GUPS, %s ==\n", mode)

		radix := nestedecpt.DefaultConfig(nestedecpt.NestedRadix, "GUPS", thp)
		radix.WarmupAccesses, radix.MeasureAccesses = 50_000, 150_000
		rr, err := nestedecpt.Run(radix)
		if err != nil {
			log.Fatal(err)
		}

		ecpt := nestedecpt.DefaultConfig(nestedecpt.NestedECPT, "GUPS", thp)
		ecpt.WarmupAccesses, ecpt.MeasureAccesses = 50_000, 150_000
		re, err := nestedecpt.Run(ecpt)
		if err != nil {
			log.Fatal(err)
		}

		fmt.Printf("  nested radix : %9d cycles, mean walk %4.0f cycles, %4.1f MMU reqs/walk\n",
			rr.Cycles, rr.WalkLatency.Mean(), float64(rr.MMUAccesses)/float64(rr.Walks))
		fmt.Printf("  nested ECPTs : %9d cycles, mean walk %4.0f cycles, %4.1f MMU reqs/walk\n",
			re.Cycles, re.WalkLatency.Mean(), float64(re.MMUAccesses)/float64(re.Walks))
		fmt.Printf("  speedup      : %.3fx\n\n", float64(rr.Cycles)/float64(re.Cycles))
	}
	fmt.Println("A nested radix walk chases up to 24 dependent pointers; a nested")
	fmt.Println("ECPT walk issues three short parallel probe groups instead.")
}
