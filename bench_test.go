// Benchmarks regenerating every table and figure of the paper's
// evaluation at a reduced but representative scale. Each benchmark
// prints the corresponding rows/series once (so `go test -bench=.`
// reproduces the evaluation's shape) and reports the simulation cost
// per regeneration.
//
// For the full-scale evaluation use: go run ./cmd/experiments
package nestedecpt

import (
	"fmt"
	"io"
	"os"
	"runtime"
	"sync"
	"testing"

	"nestedecpt/internal/addr"
	"nestedecpt/internal/core"
	"nestedecpt/internal/report"
)

// benchSettings keeps each benchmark's simulation volume small enough
// for `go test -bench=.` to complete in minutes. The suite sweeps its
// runs on the parallel engine (all figures print identically; see
// report.Settings.Parallelism).
func benchSettings(apps ...string) report.Settings {
	return report.Settings{Warmup: 10_000, Measure: 30_000, Scale: 16, Seed: 42, Apps: apps,
		Parallelism: runtime.GOMAXPROCS(0)}
}

// benchSuite is shared across benchmarks so configurations reused by
// several figures (exactly like the paper's shared runs) simulate once.
var (
	benchSuiteOnce sync.Once
	benchSuiteInst *report.Suite
)

func sharedSuite() *report.Suite {
	benchSuiteOnce.Do(func() {
		benchSuiteInst = report.NewSuite(benchSettings("BC", "DC", "GUPS", "MUMmer", "SysBench"))
	})
	return benchSuiteInst
}

// once guards so each figure prints a single copy regardless of b.N.
var printed sync.Map

func emit(name string, f func(w io.Writer) error, b *testing.B) {
	var w io.Writer = io.Discard
	if _, dup := printed.LoadOrStore(name, true); !dup {
		w = os.Stdout
		fmt.Fprintf(w, "\n===== %s =====\n", name)
	}
	if err := f(w); err != nil {
		b.Fatal(err)
	}
}

func BenchmarkTable1Configs(b *testing.B) {
	for i := 0; i < b.N; i++ {
		emit("Table 1", func(w io.Writer) error { report.Table1(w); return nil }, b)
	}
}

func BenchmarkTable2Parameters(b *testing.B) {
	s := sharedSuite()
	for i := 0; i < b.N; i++ {
		emit("Table 2", func(w io.Writer) error { report.Table2(w, s.Settings); return nil }, b)
	}
}

func BenchmarkTable3AreaPower(b *testing.B) {
	for i := 0; i < b.N; i++ {
		emit("Table 3", func(w io.Writer) error { report.Table3(w); return nil }, b)
	}
}

func BenchmarkTable4Applications(b *testing.B) {
	s := sharedSuite()
	for i := 0; i < b.N; i++ {
		emit("Table 4", func(w io.Writer) error { report.Table4(w, s.Settings); return nil }, b)
	}
}

func BenchmarkFigure9Speedup(b *testing.B) {
	s := sharedSuite()
	for i := 0; i < b.N; i++ {
		emit("Figure 9", s.Figure9, b)
	}
}

func BenchmarkFigure10MMUBusy(b *testing.B) {
	s := sharedSuite()
	for i := 0; i < b.N; i++ {
		emit("Figure 10", s.Figure10, b)
	}
}

func BenchmarkFigure11WalkLatency(b *testing.B) {
	s := sharedSuite()
	for i := 0; i < b.N; i++ {
		emit("Figure 11", s.Figure11, b)
	}
}

func BenchmarkFigure12AdaptiveHitRates(b *testing.B) {
	s := sharedSuite()
	for i := 0; i < b.N; i++ {
		emit("Figure 12", s.Figure12, b)
	}
}

func BenchmarkFigure13CacheCharacterization(b *testing.B) {
	s := sharedSuite()
	for i := 0; i < b.N; i++ {
		emit("Figure 13", s.Figure13, b)
	}
}

func BenchmarkFigure14WalkBreakdown(b *testing.B) {
	s := sharedSuite()
	for i := 0; i < b.N; i++ {
		emit("Figure 14", s.Figure14, b)
	}
}

func BenchmarkSection94STCSweep(b *testing.B) {
	s := sharedSuite()
	for i := 0; i < b.N; i++ {
		emit("Section 9.4", s.Section94, b)
	}
}

func BenchmarkSection95Memory(b *testing.B) {
	s := sharedSuite()
	for i := 0; i < b.N; i++ {
		emit("Section 9.5", s.Section95, b)
	}
}

func BenchmarkSection96OtherDesigns(b *testing.B) {
	s := sharedSuite()
	for i := 0; i < b.N; i++ {
		emit("Section 9.6", s.Section96, b)
	}
}

// benchSweep runs a fixed small design×app matrix (Figure 10's) on a
// fresh suite each iteration, so the sequential and parallel engines
// can be compared directly: the speedup of BenchmarkSweepEngineParallel
// over BenchmarkSweepEngineSequential is the sweep engine's scaling on
// this host (runs are independent, so it approaches min(GOMAXPROCS,
// runs) on multi-core machines).
func benchSweep(b *testing.B, parallel int) {
	for i := 0; i < b.N; i++ {
		set := report.Settings{Warmup: 2_000, Measure: 6_000, Scale: 16, Seed: 42,
			Apps: []string{"GUPS", "BC"}, Parallelism: parallel}
		s := report.NewSuite(set)
		if err := s.Figure10(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSweepEngineSequential(b *testing.B) { benchSweep(b, 1) }

func BenchmarkSweepEngineParallel(b *testing.B) { benchSweep(b, runtime.GOMAXPROCS(0)) }

// walkBenchNow is the fixed cycle stamp the walk benchmarks and the
// allocation-regression test walk at. A constant beyond the warmed
// machine's clock keeps the adaptive controller quiescent after its
// first interval instead of re-triggering every iteration.
const walkBenchNow = uint64(1) << 40

// warmedWalkMachine builds and runs a machine, then resolves a set of
// VAs the walker actually translates. It fails loudly if none resolve,
// so the walk benchmarks can never silently measure the fault path.
func warmedWalkMachine(tb testing.TB, design Design, app string, thp bool) (*Machine, []addr.GVA) {
	tb.Helper()
	cfg := DefaultConfig(design, app, thp)
	cfg.WarmupAccesses = 5_000
	cfg.MeasureAccesses = 5_000
	m, err := NewMachine(cfg)
	if err != nil {
		tb.Fatal(err)
	}
	if _, err := m.Run(); err != nil {
		tb.Fatal(err)
	}
	var vas []addr.GVA
	for i := uint64(0); i < 8192 && len(vas) < 1024; i++ {
		va := addr.GVA(0x4000_0000_0000 + i*4096)
		if _, err := m.Walker().Walk(walkBenchNow, va); err == nil {
			vas = append(vas, va)
		}
	}
	if len(vas) == 0 {
		tb.Fatalf("%v/%s: no mapped VAs resolved; workload layout changed?", design, app)
	}
	return m, vas
}

// BenchmarkSingleWalkNestedECPT measures raw walker throughput: how
// fast the simulator executes nested ECPT walks (host metric, not a
// paper figure). Every iteration walks a pre-resolved mapped address,
// so the loop measures translation cost, never the fault path.
func BenchmarkSingleWalkNestedECPT(b *testing.B) {
	m, vas := warmedWalkMachine(b, NestedECPT, "GUPS", true)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.Walker().Walk(walkBenchNow, vas[i%len(vas)]); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBatchWalkNestedECPT measures the batched walker hot path:
// WalkBatch over pre-resolved mapped addresses at the pipeline's batch
// sizes. ns/walk (= ns/op divided by the batch size) is the number the
// BENCH_3.json snapshot tracks; the batch path must stay 0 allocs.
func BenchmarkBatchWalkNestedECPT(b *testing.B) {
	for _, batch := range []int{8, 32} {
		b.Run(fmt.Sprintf("batch=%d", batch), func(b *testing.B) {
			m, vas := warmedWalkMachine(b, NestedECPT, "GUPS", true)
			w := m.Walker()
			// Feed sliding windows of a pre-extended pool so the timed
			// loop measures WalkBatch alone, never input staging.
			pool := make([]addr.GVA, len(vas)+batch)
			copy(pool, vas)
			copy(pool[len(vas):], vas)
			outs := make([]core.WalkResult, batch)
			errs := make([]error, batch)
			w.WalkBatch(walkBenchNow, pool[:batch], outs, errs) // grow scratch before timing
			off := 0
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				w.WalkBatch(walkBenchNow, pool[off:off+batch], outs, errs)
				if off++; off == len(vas) {
					off = 0
				}
			}
			b.StopTimer()
			perWalk := float64(b.Elapsed().Nanoseconds()) / float64(b.N*batch)
			b.ReportMetric(perWalk, "ns/walk")
		})
	}
}

// BenchmarkSimulationThroughput measures end-to-end simulated accesses
// per second for the headline configuration.
func BenchmarkSimulationThroughput(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := DefaultConfig(NestedECPT, "BC", true)
		cfg.WarmupAccesses = 2_000
		cfg.MeasureAccesses = 10_000
		if _, err := Run(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationCuckooWays sweeps the cuckoo associativity d (the
// paper evaluates d=3): fewer ways mean fewer parallel probes per step
// but more displacement and resize pressure; more ways the opposite.
// This is the ablation DESIGN.md calls out for the d=3 choice.
func BenchmarkAblationCuckooWays(b *testing.B) {
	for i := 0; i < b.N; i++ {
		emit("Ablation: cuckoo ways (GUPS, 4KB)", func(w io.Writer) error {
			fmt.Fprintf(w, "%-6s %12s %10s %10s\n", "d", "cycles", "mean walk", "kicks")
			for _, d := range []int{2, 3, 4} {
				cfg := DefaultConfig(NestedECPT, "GUPS", false)
				cfg.WarmupAccesses, cfg.MeasureAccesses = 20_000, 60_000
				cfg.ECPTWays = d
				m, err := NewMachine(cfg)
				if err != nil {
					return err
				}
				res, err := m.Run()
				if err != nil {
					return err
				}
				kicks := m.Kernel().ECPTs().Table(0).Stats().Kicks
				fmt.Fprintf(w, "%-6d %12d %10.0f %10d\n", d, res.Cycles, res.WalkLatency.Mean(), kicks)
			}
			return nil
		}, b)
	}
}

// BenchmarkAblationInterference toggles the co-runner interference
// model, quantifying how much of the measured translation cost comes
// from the 8-core shared-L3 contention the paper's testbed has.
func BenchmarkAblationInterference(b *testing.B) {
	for i := 0; i < b.N; i++ {
		emit("Ablation: co-runner interference (GUPS, 4KB)", func(w io.Writer) error {
			fmt.Fprintf(w, "%-8s %12s %12s\n", "cores", "NR cycles", "NE cycles")
			for _, cores := range []int{1, 8} {
				var cyc [2]uint64
				for j, d := range []Design{NestedRadix, NestedECPT} {
					cfg := DefaultConfig(d, "GUPS", false)
					cfg.WarmupAccesses, cfg.MeasureAccesses = 20_000, 60_000
					cfg.Cores = cores
					res, err := Run(cfg)
					if err != nil {
						return err
					}
					cyc[j] = res.Cycles
				}
				fmt.Fprintf(w, "%-8d %12d %12d\n", cores, cyc[0], cyc[1])
			}
			return nil
		}, b)
	}
}
